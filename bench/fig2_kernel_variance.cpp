// Fig. 2 — GCUPs of the inter-task and intra-task kernels as a function of
// the standard deviation of database sequence lengths.
//
// "We generated several random databases containing s sequences using a
// log-normal distribution of the sequence lengths. We set the standard
// deviation between 100 and 1500 [...] and ran both kernels with the same
// query sequence of length 567." The inter-task kernel launch is bounded by
// the longest sequence of the group, so its throughput collapses as the
// variance grows; the intra-task kernels (one block per pair, blocks
// scheduled independently) barely care. The crossover is what motivates the
// threshold dispatch.
#include "bench_common.h"

namespace cusw {
namespace {

void run() {
  bench::print_header("Fig. 2 — kernel GCUPs vs length variance",
                      "Hains et al., IPDPS'11, Figure 2");
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};
  Rng rng(567);
  const auto query = seq::random_protein(567, rng).residues;

  const bench::Gpu gpu = bench::c1060();
  gpusim::Device dev(gpu.spec);
  // Half an occupancy group of sequences: enough blocks that the launch
  // makespan is set by the longest member, which is the whole effect.
  const std::size_t s = bench::scaled(std::max<std::size_t>(
      256,
      cudasw::inter_task_group_size(dev.spec(), cudasw::InterTaskParams{}) / 2));

  Table t({"stddev", "mean_len", "inter-task", "intra-task (orig)",
           "intra-task (improved)"},
          2);
  gpusim::StallBreakdown last_orig, last_imp, last_inter;
  for (double stddev : {100.0, 300.0, 500.0, 700.0, 900.0, 1100.0, 1300.0,
                        1500.0}) {
    // As in the paper, the mean rises with the deviation ("the mean varies
    // from 1000 to 4000").
    const double mean = 1000.0 + 2.0 * stddev;
    auto db = seq::lognormal_db(s, mean, stddev,
                                0xF162 + static_cast<std::uint64_t>(stddev),
                                32, 40000);
    db.sort_by_length();  // the host pipeline's preprocessing step
    const auto st = db.length_stats();

    // The intra-task kernels run one block per pair, so a stratified
    // subsample keeps the wall-clock of this bench sane without changing
    // their (length-insensitive) throughput.
    const seq::SequenceDB intra_db =
        db.sample_stride(std::max<std::size_t>(1, db.size() / 96));

    const auto inter = cudasw::run_inter_task(dev, query, db, matrix, gap, {});
    const auto orig = cudasw::run_intra_task_original(dev, query, intra_db,
                                                      matrix, gap, {});
    const auto imp = cudasw::run_intra_task_improved(dev, query, intra_db,
                                                     matrix, gap, {});
    t.add_row({st.stddev_length, st.mean_length,
               gpu.eq(cudasw::kernel_gcups(inter)),
               gpu.eq(cudasw::kernel_gcups(orig)),
               gpu.eq(cudasw::kernel_gcups(imp))});
    last_orig = orig.stats.stall;
    last_imp = imp.stats.stall;
    last_inter = inter.stats.stall;
  }
  bench::emit(t);

  // The crossover explained by resource: at the highest variance, where
  // does the original intra-task kernel spend the cycles the improved one
  // does not, and what dominates the (variance-crippled) inter-task run?
  std::printf("stall waterfall @ stddev 1500 (intra orig -> improved):\n");
  bench::emit(bench::stall_waterfall(last_orig, last_imp),
              "stall_waterfall_intra");
  std::printf("stall waterfall @ stddev 1500 (inter-task -> intra improved):\n");
  bench::emit(bench::stall_waterfall(last_inter, last_imp),
              "stall_waterfall_inter");
  std::printf(
      "expected shape: inter-task falls steeply with variance; both\n"
      "intra-task kernels stay nearly flat; the improved intra-task curve\n"
      "sits far above the original, moving the crossover to lower variance\n"
      "(the paper's §IV-B tradeoff-point observation).\n");
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "fig2_kernel_variance");
  cusw::bench::note_seed(0xF162);  // primary workload seed, stamped into the JSON
  cusw::run();
  return 0;
}
