// Google-benchmark microbenchmarks of the host-side kernels: the scalar
// reference aligner and the striped (SWPS3-style) kernel, plus query
// profile construction. These are the real-wall-clock baselines behind
// Fig. 7's SWPS3 curve.
#include <benchmark/benchmark.h>

#include "seq/generate.h"
#include "swps3/striped_sw.h"
#include "sw/query_profile.h"
#include "sw/smith_waterman.h"

namespace cusw {
namespace {

const sw::GapPenalty kGap{10, 2};

std::vector<seq::Code> codes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return seq::random_protein(n, rng).residues;
}

void BM_ScalarSW(benchmark::State& state) {
  const auto q = codes(static_cast<std::size_t>(state.range(0)), 1);
  const auto t = codes(2048, 2);
  const auto& m = sw::ScoringMatrix::blosum62();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::sw_score(q, t, m, kGap));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(q.size() * t.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScalarSW)->Arg(144)->Arg(567)->Arg(2048);

void BM_StripedSW(benchmark::State& state) {
  const auto q = codes(static_cast<std::size_t>(state.range(0)), 3);
  const auto t = codes(2048, 4);
  const auto& m = sw::ScoringMatrix::blosum62();
  const swps3::StripedProfile prof(q, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swps3::striped_sw_score(prof, t, kGap));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(q.size() * t.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StripedSW)->Arg(144)->Arg(567)->Arg(2048);

void BM_StripedProfileBuild(benchmark::State& state) {
  const auto q = codes(static_cast<std::size_t>(state.range(0)), 5);
  const auto& m = sw::ScoringMatrix::blosum62();
  for (auto _ : state) {
    swps3::StripedProfile prof(q, m);
    benchmark::DoNotOptimize(prof.row(0));
  }
}
BENCHMARK(BM_StripedProfileBuild)->Arg(567)->Arg(5478);

void BM_PackedProfileBuild(benchmark::State& state) {
  const auto q = codes(static_cast<std::size_t>(state.range(0)), 6);
  const auto& m = sw::ScoringMatrix::blosum62();
  for (auto _ : state) {
    sw::PackedQueryProfile prof(q, m);
    benchmark::DoNotOptimize(prof.words().data());
  }
}
BENCHMARK(BM_PackedProfileBuild)->Arg(567)->Arg(5478);

}  // namespace
}  // namespace cusw

BENCHMARK_MAIN();
