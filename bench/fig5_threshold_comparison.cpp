// Fig. 5 — the paper's central comparison. Four configurations (original /
// improved intra-task kernel x Tesla C1060 / C2050) swept over the
// threshold, reporting (a) whole-application GCUPs and (b) the percentage
// of running time spent in the intra-task kernel, both as functions of the
// percentage of sequences compared by the intra-task kernel.
//
// "Our kernel always improves performance. The gain is at least 6.7% on the
// C2050 (17.5% on the C1060) and as much as 39.3% on the C2050 (67.0% on
// the C1060)."
#include <variant>

#include "bench_common.h"

namespace cusw {
namespace {

void run_sweep(bool caches_enabled) {
  const auto& matrix = sw::ScoringMatrix::blosum62();
  Rng rng(576);
  const auto query = seq::random_protein(576, rng).residues;
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(2000), 0xF165);

  auto st = db.length_stats();
  std::sort(st.lengths.begin(), st.lengths.end());
  std::vector<std::size_t> thresholds = {3072};
  for (double pct : {0.5, 1.0, 2.0, 3.5, 6.0, 10.0}) {
    const auto idx = static_cast<std::size_t>(
        static_cast<double>(st.lengths.size()) * (1.0 - pct / 100.0));
    thresholds.push_back(st.lengths[std::min(idx, st.lengths.size() - 1)]);
  }

  struct Config {
    const char* label;
    bench::Gpu gpu;
    cudasw::IntraKernel kernel;
  };
  const auto c1060 = bench::c1060();
  const auto c2050 = caches_enabled ? bench::c2050()
                                    : bench::c2050().with_caches_disabled();
  const Config configs[] = {
      {"Imp. Intratask (C2050)", c2050, cudasw::IntraKernel::kImproved},
      {"Orig. Intratask (C2050)", c2050, cudasw::IntraKernel::kOriginal},
      {"Imp. Intratask (C1060)", c1060, cudasw::IntraKernel::kImproved},
      {"Orig. Intratask (C1060)", c1060, cudasw::IntraKernel::kOriginal},
  };

  Table a({"% seqs intra", configs[0].label, configs[1].label,
           configs[2].label, configs[3].label},
          2);
  Table b = a;
  for (std::size_t thr : thresholds) {
    std::vector<Table::Cell> row_a, row_b;
    double pct_intra = 0.0;
    for (const Config& c : configs) {
      gpusim::Device dev(c.gpu.spec);
      cudasw::SearchConfig cfg;
      cfg.threshold = thr;
      cfg.intra_kernel = c.kernel;
      const auto r = cudasw::search(dev, query, db, matrix, cfg);
      pct_intra = 100.0 * static_cast<double>(r.intra_sequences) /
                  static_cast<double>(db.size());
      // In-place construction: a Cell temporary's variant move triggers
      // a GCC 12 -Wmaybe-uninitialized false positive under -Werror.
      row_a.emplace_back(std::in_place_type<double>, c.gpu.eq(r.gcups()));
      row_b.emplace_back(std::in_place_type<double>,
                         100.0 * r.intra_time_fraction());
    }
    row_a.emplace(row_a.begin(), std::in_place_type<double>, pct_intra);
    row_b.emplace(row_b.begin(), std::in_place_type<double>, pct_intra);
    a.add_row(std::move(row_a));
    b.add_row(std::move(row_b));
  }

  std::printf("--- (a) whole-application GCUPs ---\n");
  bench::emit(a);
  std::printf("--- (b) %% of running time spent in the intra-task kernel ---\n");
  bench::emit(b);
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "fig5_threshold_comparison");
  cusw::bench::note_seed(0xF165);  // primary workload seed, stamped into the JSON
  cusw::bench::print_header(
      "Fig. 5 — GCUPs and intra-task time share vs threshold, 4 configs",
      "Hains et al., IPDPS'11, Figure 5(a)/(b)");
  cusw::run_sweep(/*caches_enabled=*/true);
  std::printf(
      "expected shape: improved >= original everywhere, with the gap\n"
      "widening as more sequences go to intra-task; the C2050 narrows the\n"
      "gap (its caches rescue the original kernel); the improved kernel's\n"
      "intra time share stays less than half the original's.\n");
  return 0;
}
