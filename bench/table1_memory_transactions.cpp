// Table I — total global-memory transactions of both intra-task kernels on
// queries of two different sizes against the Swiss-Prot over-threshold
// subset.
//
// Paper's numbers (full Swiss-Prot):
//     kernel      query 567     query 5478
//     improved       13,828      4,233,197
//     original   28,345,xxx    134,179,739
//
// The simulator's coalescer produces these counters exactly (they do not
// depend on the timing model). At our database scale the absolute counts
// shrink with the number of long sequences; the reproduced result is the
// ratio structure: a much larger original/improved gap at 567 (one strip,
// no intermediate rows) than at 5478 (five strips), and roughly 10^7 vs
// 10^6 accesses per 1024 query symbols.
//
// The JSON mirror goes beyond the printed table: each kernel/query entry
// embeds the per-site attribution rows (gpusim::site_breakdown_json), so
// the aggregate ratio can be decomposed into wavefront vs database vs
// strip-boundary traffic without rerunning anything.
#include "bench_common.h"
#include "gpusim/report.h"
#include "util/json.h"

namespace cusw {
namespace {

void run() {
  bench::print_header("Table I — global memory transactions, orig vs improved",
                      "Hains et al., IPDPS'11, Table I");
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(2400), 0xAB1E);
  const auto longs = db.split_by_threshold(3072).second;
  std::printf("over-threshold subset: %zu sequences, %llu residues\n\n",
              longs.size(),
              static_cast<unsigned long long>(longs.total_residues()));

  gpusim::Device dev(bench::c1060().spec);
  Table t({"kernel", "query 567", "query 5478", "ratio orig/imp @567",
           "ratio @5478"},
          1);
  const std::size_t qlens[2] = {567, 5478};
  std::uint64_t txn[2][2] = {};
  std::string query_json;
  for (int qi = 0; qi < 2; ++qi) {
    const std::size_t qlen = qlens[qi];
    Rng rng(qlen);
    const auto query = seq::random_protein(qlen, rng).residues;
    const auto imp =
        cudasw::run_intra_task_improved(dev, query, longs, matrix, gap, {});
    const auto orig =
        cudasw::run_intra_task_original(dev, query, longs, matrix, gap, {});
    txn[0][qi] = imp.stats.global_memory_transactions();
    txn[1][qi] = orig.stats.global_memory_transactions();

    // Where did the transaction savings go? Decompose the orig→improved
    // cycle gap by stall reason (the paper's Table I explains the *count*
    // gap; the waterfall shows which resource the counts were costing).
    std::printf("stall waterfall, query %zu (orig -> improved):\n", qlen);
    Table waterfall = bench::stall_waterfall(orig.stats.stall, imp.stats.stall);
    bench::emit(waterfall, "stall_waterfall_q" + std::to_string(qlen));

    const auto kernel_json = [](const char* name,
                                const cudasw::KernelRun& run) {
      return util::JsonFields()
          .field("kernel", std::string_view(name))
          .field("global_transactions",
                 run.stats.global_memory_transactions())
          .field("dram_bytes", run.stats.global.dram_bytes +
                                   run.stats.local.dram_bytes +
                                   run.stats.texture.dram_bytes)
          .field("cells", run.cells)
          .raw("sites", gpusim::site_breakdown_json(run.stats))
          .object();
    };
    std::string kernels = "[";
    kernels += kernel_json("intra_task_improved", imp);
    kernels += ", ";
    kernels += kernel_json("intra_task_original", orig);
    kernels += "]";
    if (qi) query_json += ",\n  ";
    query_json += util::JsonFields()
                      .field("query_length", static_cast<std::uint64_t>(qlen))
                      .field("ratio_orig_over_imp",
                             static_cast<double>(txn[1][qi]) /
                                 static_cast<double>(txn[0][qi]))
                      .raw("kernels", kernels)
                      .raw("stall_waterfall", waterfall.to_json())
                      .object();
  }
  t.add_row({std::string("Imp. Kernel"), static_cast<std::int64_t>(txn[0][0]),
             static_cast<std::int64_t>(txn[0][1]),
             static_cast<double>(txn[1][0]) / static_cast<double>(txn[0][0]),
             static_cast<double>(txn[1][1]) / static_cast<double>(txn[0][1])});
  t.add_row({std::string("Orig. Kernel"), static_cast<std::int64_t>(txn[1][0]),
             static_cast<std::int64_t>(txn[1][1]), 0.0, 0.0});
  bench::emit(t);

  std::string queries = "[";
  queries += query_json;
  queries += "]";
  std::string payload =
      util::JsonFields()
          .field("bench", std::string_view("table1_memory_transactions"))
          .field("database_sequences",
                 static_cast<std::uint64_t>(longs.size()))
          .field("database_residues", longs.total_residues())
          .raw("queries", queries)
          .raw("table", t.to_json())
          .object();
  payload += "\n";
  bench::emit_json("table1_memory_transactions", payload);

  // The paper's per-strip framing: accesses per 1024 query symbols.
  const double cells_5478 =
      5478.0 * static_cast<double>(longs.total_residues());
  std::printf(
      "per 1024 query symbols (query 5478): improved %.2e, original %.2e\n"
      "(paper: ~1e6 vs ~1e7); transactions per cell: imp %.4f, orig %.4f\n",
      static_cast<double>(txn[0][1]) / (5478.0 / 1024.0),
      static_cast<double>(txn[1][1]) / (5478.0 / 1024.0),
      static_cast<double>(txn[0][1]) / cells_5478,
      static_cast<double>(txn[1][1]) / cells_5478);
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv);
  cusw::bench::note_seed(0xAB1E);  // primary workload seed, stamped into the JSON
  cusw::run();
  return 0;
}
