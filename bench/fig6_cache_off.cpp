// Fig. 6 — the Fig. 5(b) experiment repeated with the C2050's L1 and L2
// caches disabled.
//
// "To show that the cache is indeed responsible for the improvement [of the
// original kernel on Fermi], we performed the same experiment on a Tesla
// C2050 with both of the L1 and L2 caches turned off. [...] the
// improvements gained by the original kernel on a Tesla C2050 are almost
// completely attributed to the cache."
#include <variant>

#include "bench_common.h"

namespace cusw {
namespace {

void run() {
  bench::print_header(
      "Fig. 6 — intra-task time share with C2050 L1/L2 disabled",
      "Hains et al., IPDPS'11, Figure 6");
  const auto& matrix = sw::ScoringMatrix::blosum62();
  Rng rng(576);
  const auto query = seq::random_protein(576, rng).residues;
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(2000), 0xF165);

  auto st = db.length_stats();
  std::sort(st.lengths.begin(), st.lengths.end());
  std::vector<std::size_t> thresholds = {3072};
  for (double pct : {1.0, 2.0, 3.5, 6.0, 10.0}) {
    const auto idx = static_cast<std::size_t>(
        static_cast<double>(st.lengths.size()) * (1.0 - pct / 100.0));
    thresholds.push_back(st.lengths[std::min(idx, st.lengths.size() - 1)]);
  }

  struct Config {
    const char* label;
    bench::Gpu gpu;
    cudasw::IntraKernel kernel;
  };
  const Config configs[] = {
      {"Orig (C2050 caches ON)", bench::c2050(),
       cudasw::IntraKernel::kOriginal},
      {"Orig (C2050 caches OFF)", bench::c2050().with_caches_disabled(),
       cudasw::IntraKernel::kOriginal},
      {"Orig (C1060)", bench::c1060(), cudasw::IntraKernel::kOriginal},
      {"Imp (C2050 caches OFF)", bench::c2050().with_caches_disabled(),
       cudasw::IntraKernel::kImproved},
  };

  Table t({"% seqs intra", "ON: % time intra", "OFF: % time intra",
           "C1060: % time intra", "Imp OFF: % time intra"},
          2);
  Table g({"% seqs intra", "ON: GCUPs", "OFF: GCUPs", "C1060: GCUPs",
           "Imp OFF: GCUPs"},
          2);
  for (std::size_t thr : thresholds) {
    std::vector<Table::Cell> row_t, row_g;
    double pct_intra = 0.0;
    for (const Config& c : configs) {
      gpusim::Device dev(c.gpu.spec);
      cudasw::SearchConfig cfg;
      cfg.threshold = thr;
      cfg.intra_kernel = c.kernel;
      const auto r = cudasw::search(dev, query, db, matrix, cfg);
      pct_intra = 100.0 * static_cast<double>(r.intra_sequences) /
                  static_cast<double>(db.size());
      // In-place construction: a Cell temporary's variant move triggers
      // a GCC 12 -Wmaybe-uninitialized false positive under -Werror.
      row_t.emplace_back(std::in_place_type<double>,
                         100.0 * r.intra_time_fraction());
      row_g.emplace_back(std::in_place_type<double>, c.gpu.eq(r.gcups()));
    }
    row_t.emplace(row_t.begin(), std::in_place_type<double>, pct_intra);
    row_g.emplace(row_g.begin(), std::in_place_type<double>, pct_intra);
    t.add_row(std::move(row_t));
    g.add_row(std::move(row_g));
  }
  std::printf("--- %% of running time in the intra-task kernel ---\n");
  bench::emit(t);
  std::printf("--- whole-application GCUPs ---\n");
  bench::emit(g);
  std::printf(
      "expected shape: with caches off, the original kernel's intra time\n"
      "share on the C2050 climbs to C1060-like levels — the Fermi advantage\n"
      "of the original kernel is almost entirely the caches. The improved\n"
      "kernel barely changes (it already avoids global memory).\n");
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "fig6_cache_off");
  cusw::bench::note_seed(0xF165);  // primary workload seed, stamped into the JSON
  cusw::run();
  return 0;
}
