// Host-parallelism speedup harness: runs a scaled Table II workload
// (Swiss-Prot profile, both kernels engaged) once with CUSW_THREADS=1 and
// once with the requested/parallel thread count, reports serial vs
// parallel *host wall-clock* (simulated GCUPs are identical by the
// determinism contract — that identity is checked and reported too), and
// writes the result to BENCH_host_parallel.json.
//
// Flags: --threads=N picks the parallel worker count (default: hardware
// threads); --repeat=N takes the best of N timed passes per mode.
#include "bench_common.h"

namespace cusw {
namespace {

struct Measurement {
  double wall_seconds = 0.0;
  std::vector<cudasw::SearchReport> reports;
};

bool reports_identical(const std::vector<cudasw::SearchReport>& a,
                       const std::vector<cudasw::SearchReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].scores != b[i].scores) return false;
    if (a[i].seconds() != b[i].seconds()) return false;  // exact, by design
    if (a[i].inter_stats.global.transactions !=
        b[i].inter_stats.global.transactions)
      return false;
    if (a[i].intra_stats.global.transactions !=
        b[i].intra_stats.global.transactions)
      return false;
  }
  return true;
}

void run(std::size_t parallel_threads, int repeat, bool hardware_limited) {
  bench::print_header(
      "Host-parallel speedup — serial vs CUSW_THREADS worker sharding",
      "this repo's host execution model (DESIGN.md §5); workload from "
      "Hains et al., IPDPS'11, Table II");

  const auto& matrix = sw::ScoringMatrix::blosum62();
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(1500), 0x51AB);
  std::vector<std::vector<seq::Code>> queries;
  for (std::size_t len : {144, 567}) {
    Rng rng(len + 3);
    queries.push_back(seq::random_protein(len, rng).residues);
  }
  const auto slice = bench::c1060();

  const auto measure = [&](std::size_t threads) {
    setenv("CUSW_THREADS", std::to_string(threads).c_str(), 1);
    Measurement best;
    for (int r = 0; r < repeat; ++r) {
      gpusim::Device dev(slice.spec);
      cudasw::SearchConfig cfg;
      WallTimer timer;
      auto reports = cudasw::search_batch(dev, queries, db, matrix, cfg);
      const double wall = timer.seconds();
      if (r == 0 || wall < best.wall_seconds) {
        best.wall_seconds = wall;
        best.reports = std::move(reports);
      }
    }
    return best;
  };

  const Measurement serial = measure(1);
  const Measurement parallel = measure(parallel_threads);

  const bool identical = reports_identical(serial.reports, parallel.reports);
  const double speedup = parallel.wall_seconds > 0.0
                             ? serial.wall_seconds / parallel.wall_seconds
                             : 0.0;
  double cells = 0.0, sim_seconds = 0.0;
  for (const auto& r : serial.reports) {
    cells += static_cast<double>(r.cells());
    sim_seconds += r.seconds();
  }
  const double sim_gcups =
      sim_seconds > 0.0 ? slice.eq(cells / sim_seconds * 1e-9) : 0.0;
  const std::size_t hw = ThreadPool::default_thread_count();

  Table t({"mode", "threads", "wall s", "speedup", "simulated identical"});
  t.add_row({std::string("serial"), std::int64_t{1}, serial.wall_seconds, 1.0,
             std::string("-")});
  t.add_row({std::string("parallel"),
             static_cast<std::int64_t>(parallel_threads),
             parallel.wall_seconds, speedup,
             std::string(identical ? "yes" : "NO")});
  bench::emit(t);
  std::printf(
      "hardware threads: %zu; simulated GCUPs (thread-count invariant): "
      "%.2f\n"
      "expected shape: speedup approaches the worker count on multi-core\n"
      "hosts (>= 2x with >= 4 hardware threads); 'simulated identical'\n"
      "must always be yes.\n\n",
      hw, sim_gcups);
  if (hardware_limited) {
    std::printf(
        "NOTE: worker count clamped to the %zu available hardware "
        "thread(s);\nwall-clock speedup is not meaningful on this host "
        "and downstream\ncomparisons (tools/perf_diff --bench) skip the "
        "wall-clock keys.\n\n",
        hw);
  }

  // Keys and filename are the cross-PR perf-trajectory contract; keep
  // them stable (the payload is custom, so it goes through emit_json
  // directly rather than the BenchMain table mirror).
  char payload[512];
  std::snprintf(payload, sizeof(payload),
                "{\n"
                "  \"bench\": \"host_parallel_speedup\",\n"
                "  \"workload\": \"swissprot-profile, %zu sequences, "
                "%zu queries\",\n"
                "  \"hardware_threads\": %zu,\n"
                "  \"parallel_threads\": %zu,\n"
                "  \"hardware_limited\": %s,\n"
                "  \"serial_wall_seconds\": %.6f,\n"
                "  \"parallel_wall_seconds\": %.6f,\n"
                "  \"speedup\": %.3f,\n"
                "  \"simulated_identical\": %s,\n"
                "  \"simulated_gcups\": %.3f\n"
                "}\n",
                db.size(), queries.size(), hw, parallel_threads,
                hardware_limited ? "true" : "false", serial.wall_seconds,
                parallel.wall_seconds, speedup,
                identical ? "true" : "false", sim_gcups);
  bench::emit_json("host_parallel", payload);
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::note_seed(0x51AB);  // primary workload seed, stamped into the JSON
  cusw::Cli cli(argc, argv);
  const auto threads = static_cast<long>(cli.get_int("threads", 0));
  const std::size_t requested =
      threads > 1
          ? static_cast<std::size_t>(threads)
          : std::max<std::size_t>(2, cusw::ThreadPool::default_thread_count());
  // A worker count above the hardware's parallelism cannot produce a real
  // speedup — on a 1-thread box it used to report a meaningless ~1.0x
  // "parallel" figure. Clamp, and stamp the JSON so perf_diff knows the
  // wall-clock keys carry no signal on this host.
  const std::size_t limit = std::min(cusw::util::parallelism(),
                                     cusw::ThreadPool::default_thread_count());
  const bool hardware_limited = requested > limit;
  const std::size_t parallel_threads = hardware_limited ? limit : requested;
  const auto repeat = static_cast<int>(cli.get_int("repeat", 1));
  cusw::run(parallel_threads, std::max(1, repeat), hardware_limited);
  return 0;
}
