// Shared plumbing for the figure/table reproduction harnesses.
//
// Every bench runs on one-SM slices of the real GPUs (DESIGN.md §2):
// databases are statistically scaled stand-ins, so the device shrinks
// proportionally — SM count, DRAM bandwidth, L2 — to keep utilisation,
// group counts and cache pressure in the paper's regime. Blocks are
// independent, so per-block behaviour is unchanged and throughput scales
// linearly with SM count (the paper's own multi-GPU argument); all GCUPs
// are reported as full-device equivalents (raw / slice factor).
//
// CUSW_BENCH_SCALE grows the workloads; CUSW_BENCH_CSV=1 mirrors each
// table to CSV on stdout.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cudasw/pipeline.h"
#include "gpusim/device_spec.h"
#include "seq/generate.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cusw::bench {

/// Apply a --threads=N flag by exporting CUSW_THREADS, so the whole bench
/// (simulator block sharding, pipeline group launches) picks it up through
/// util::parallelism(). Without the flag the env var / hardware default
/// stands. Returns the effective worker count.
inline std::size_t apply_threads_flag(const Cli& cli) {
  const int threads = cli.get_int("threads", -1);
  if (threads >= 0) {
    setenv("CUSW_THREADS", std::to_string(threads).c_str(), 1);
  }
  return util::parallelism();
}

/// Bench harness guard: parses --threads and reports host wall-clock on
/// exit. Construct first in main(). Simulated (GCUPs) numbers never depend
/// on the thread count — only this wall-clock figure does.
class BenchMain {
 public:
  BenchMain(int argc, char** argv) {
    Cli cli(argc, argv);
    threads_ = apply_threads_flag(cli);
  }
  BenchMain(const BenchMain&) = delete;
  BenchMain& operator=(const BenchMain&) = delete;
  ~BenchMain() {
    std::printf("host wall-clock: %.3f s (CUSW_THREADS=%zu)\n",
                timer_.seconds(), threads_);
  }

 private:
  WallTimer timer_;
  std::size_t threads_ = 1;
};

/// A proportionally scaled device plus the factor for converting simulated
/// throughput back to full-device-equivalent numbers.
struct Gpu {
  gpusim::DeviceSpec spec;
  double factor;

  Gpu with_caches_disabled() const {
    return {spec.with_caches_disabled(), factor};
  }

  /// Full-device-equivalent GCUPs.
  double eq(double raw_gcups) const { return raw_gcups / factor; }
};

inline Gpu slice_of(const gpusim::DeviceSpec& base) {
  gpusim::DeviceSpec s = base.scaled(1.0 / base.sm_count);  // one SM
  return {s, static_cast<double>(s.sm_count) / base.sm_count};
}

inline Gpu c1060() { return slice_of(gpusim::DeviceSpec::tesla_c1060()); }
inline Gpu c2050() { return slice_of(gpusim::DeviceSpec::tesla_c2050()); }

inline std::size_t scaled(std::size_t n) {
  return static_cast<std::size_t>(static_cast<double>(n) * bench_scale());
}

inline void print_header(const std::string& title, const std::string& source) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", source.c_str());
  std::printf(
      "devices are one-SM slices; GCUPs are full-device equivalents\n\n");
}

inline void emit(const Table& table) {
  table.print();
  if (const char* csv = std::getenv("CUSW_BENCH_CSV");
      csv && std::string(csv) != "0") {
    std::printf("\n--- csv ---\n%s", table.to_csv().c_str());
  }
  std::printf("\n");
}

/// Query lengths from the original CUDASW++ study ("ranges from 144 to
/// 5478 residues"), thinned to keep bench wall-clock sane.
inline std::vector<std::size_t> paper_query_lengths() {
  return {144, 567, 1500, 3005, 5478};
}

}  // namespace cusw::bench
