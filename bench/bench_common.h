// Shared plumbing for the figure/table reproduction harnesses.
//
// Every bench runs on one-SM slices of the real GPUs (DESIGN.md §2):
// databases are statistically scaled stand-ins, so the device shrinks
// proportionally — SM count, DRAM bandwidth, L2 — to keep utilisation,
// group counts and cache pressure in the paper's regime. Blocks are
// independent, so per-block behaviour is unchanged and throughput scales
// linearly with SM count (the paper's own multi-GPU argument); all GCUPs
// are reported as full-device equivalents (raw / slice factor).
//
// CUSW_BENCH_SCALE grows the workloads; CUSW_BENCH_CSV=1 mirrors each
// table to CSV on stdout.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "cudasw/pipeline.h"
#include "cusw_version.h"
#include "gpusim/device_spec.h"
#include "gpusim/stall.h"
#include "obs/capsule.h"
#include "obs/profile.h"
#include "seq/generate.h"
#include "util/cli.h"
#include "util/env.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cusw::bench {

/// Apply a --threads=N flag by exporting CUSW_THREADS, so the whole bench
/// (simulator block sharding, pipeline group launches) picks it up through
/// util::parallelism(). Without the flag the env var / hardware default
/// stands. Returns the effective worker count.
inline std::size_t apply_threads_flag(const Cli& cli) {
  const int threads = cli.get_int("threads", -1);
  if (threads >= 0) {
    setenv("CUSW_THREADS", std::to_string(threads).c_str(), 1);
  }
  return util::parallelism();
}

/// Device-slice factor of the most recent slice_of() call (1.0 until a
/// bench builds a device). Stamped into every BENCH_*.json so a reader
/// can convert raw simulated rates to full-device equivalents without
/// knowing which device the bench sliced.
inline double& slice_factor_slot() {
  static double factor = 1.0;
  return factor;
}

/// Device-spec name of the most recent slice_of() call ("" until a bench
/// builds a device). Stamped into every BENCH_*.json alongside the slice
/// factor so the document names the hardware it modelled.
inline std::string& device_name_slot() {
  static std::string name;
  return name;
}

/// The bench's primary workload RNG seed, stamped into every BENCH_*.json
/// so a run is reproducible from its own file. Benches declare it once up
/// front with note_seed(); 0 means "no seed declared".
inline std::uint64_t& rng_seed_slot() {
  static std::uint64_t seed = 0;
  return seed;
}

/// Declare the seed that generated this bench's workloads (first call
/// wins — the primary seed; derived per-table seeds stay in the tables).
inline void note_seed(std::uint64_t seed) {
  if (rng_seed_slot() == 0) rng_seed_slot() = seed;
}

/// Schema of the BENCH_*.json documents; bump when the stamped header or
/// table mirror changes shape. v2 added the `seed` and `device`
/// provenance fields; v3 added `git_sha` and the effective `memo` state,
/// so every artifact is traceable to a commit and a simulator fast-path
/// configuration.
inline constexpr int kBenchJsonSchemaVersion = 3;

/// Write `payload` (a complete JSON document) to `BENCH_<name>.json` in
/// the working directory. Every bench reports through this one sink so the
/// perf trajectory across PRs is machine-readable. A provenance stamp —
/// schema version, effective worker threads, device-slice factor — is
/// inserted at the head of the top-level object so every emitted document
/// carries it, custom payloads included.
inline bool emit_json(const std::string& name, const std::string& payload) {
  std::string stamped = payload;
  const std::size_t brace = stamped.find('{');
  std::size_t body = brace == std::string::npos ? std::string::npos : brace + 1;
  while (body != std::string::npos && body < stamped.size() &&
         (stamped[body] == ' ' || stamped[body] == '\n'))
    ++body;
  if (body != std::string::npos && body < stamped.size() &&
      stamped[body] != '}') {
    char stamp[448];
    std::snprintf(stamp, sizeof(stamp),
                  "\n  \"schema_version\": %d,\n  \"threads\": %zu,\n"
                  "  \"slice_factor\": %.12g,\n  \"seed\": %llu,\n"
                  "  \"device\": \"%s\",\n  \"git_sha\": \"%s\",\n"
                  "  \"memo\": \"%s\",",
                  kBenchJsonSchemaVersion, util::parallelism(),
                  slice_factor_slot(),
                  static_cast<unsigned long long>(rng_seed_slot()),
                  util::json_escape(device_name_slot()).c_str(),
                  util::json_escape(CUSW_GIT_SHA).c_str(),
                  util::env_enabled("CUSW_SIM_MEMO", true) ? "on" : "off");
    stamped.insert(brace + 1, stamp);
  }
  // The stamped document doubles as a capsule section, so a bench run
  // with CUSW_CAPSULE set archives its tables next to the counters and
  // sampled series it produced.
  obs::capsule_note_section("bench." + name, stamped);
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(stamped.data(), 1, stamped.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Bench harness guard: parses --threads, collects every emitted table,
/// and on exit reports host wall-clock and writes `BENCH_<name>.json`
/// mirroring all tables (pass an empty name to skip the JSON — benches
/// with a custom payload call emit_json() themselves). Construct first in
/// main(). Simulated (GCUPs) numbers never depend on the thread count —
/// only the wall-clock figure does.
class BenchMain {
 public:
  BenchMain(int argc, char** argv, std::string name = "")
      : name_(std::move(name)) {
    Cli cli(argc, argv);
    threads_ = apply_threads_flag(cli);
    // Arm the process-exit observability surface up front (CUSW_CAPSULE /
    // CUSW_SAMPLE_EVERY / CUSW_TRACE ...), so even a bench that never
    // launches a simulated kernel honours the report modes.
    obs::install_process_exports();
    active_slot() = this;
  }
  BenchMain(const BenchMain&) = delete;
  BenchMain& operator=(const BenchMain&) = delete;
  ~BenchMain() {
    const double wall = timer_.seconds();
    if (!name_.empty() && !tables_.empty()) {
      // `threads` is stamped by emit_json() along with the schema version
      // and slice factor, so the head carries only bench-specific fields.
      char head[160];
      std::snprintf(head, sizeof(head),
                    "{\n  \"bench\": \"%s\",\n"
                    "  \"wall_seconds\": %.6f,\n  \"tables\": [",
                    name_.c_str(), wall);
      std::string payload(head);
      for (std::size_t i = 0; i < tables_.size(); ++i) {
        payload += i ? ",\n   {" : "\n   {";
        payload += "\"name\": \"" + util::json_escape(tables_[i].first) +
                   "\", \"rows\": " + tables_[i].second + "}";
      }
      payload += "\n  ]\n}\n";
      emit_json(name_, payload);
    }
    active_slot() = nullptr;
    std::printf("host wall-clock: %.3f s (CUSW_THREADS=%zu)\n", wall,
                threads_);
  }

  /// Register one emitted table for the exit-time JSON mirror.
  void add_table(std::string section, const Table& table) {
    if (section.empty()) section = "table " + std::to_string(tables_.size());
    tables_.emplace_back(std::move(section), table.to_json());
  }

  /// The live harness of this bench process, or nullptr outside main().
  static BenchMain* active() { return active_slot(); }

 private:
  static BenchMain*& active_slot() {
    static BenchMain* slot = nullptr;
    return slot;
  }

  WallTimer timer_;
  std::size_t threads_ = 1;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> tables_;
};

/// A proportionally scaled device plus the factor for converting simulated
/// throughput back to full-device-equivalent numbers.
struct Gpu {
  gpusim::DeviceSpec spec;
  double factor;

  Gpu with_caches_disabled() const {
    return {spec.with_caches_disabled(), factor};
  }

  /// Full-device-equivalent GCUPs.
  double eq(double raw_gcups) const { return raw_gcups / factor; }
};

inline Gpu slice_of(const gpusim::DeviceSpec& base) {
  gpusim::DeviceSpec s = base.scaled(1.0 / base.sm_count);  // one SM
  Gpu g{s, static_cast<double>(s.sm_count) / base.sm_count};
  slice_factor_slot() = g.factor;
  device_name_slot() = base.name;
  return g;
}

inline Gpu c1060() { return slice_of(gpusim::DeviceSpec::tesla_c1060()); }
inline Gpu c2050() { return slice_of(gpusim::DeviceSpec::tesla_c2050()); }

inline std::size_t scaled(std::size_t n) {
  return static_cast<std::size_t>(static_cast<double>(n) * bench_scale());
}

inline void print_header(const std::string& title, const std::string& source) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", source.c_str());
  std::printf(
      "devices are one-SM slices; GCUPs are full-device equivalents\n\n");
}

inline void emit(const Table& table, std::string section = "") {
  table.print();
  if (const char* csv = std::getenv("CUSW_BENCH_CSV");
      csv && std::string(csv) != "0") {
    std::printf("\n--- csv ---\n%s", table.to_csv().c_str());
  }
  if (BenchMain* m = BenchMain::active())
    m->add_table(std::move(section), table);
  std::printf("\n");
}

/// Stall waterfall: decompose the simulated-cycle gap between a baseline
/// kernel (the paper's original) and an improved one by stall reason, so
/// the orig→improved speedup is attributed to the resources it came from
/// (fewer txn-issue cycles, less exposed latency, ...). One row per
/// reason plus a "(charged)" total row; "gap share %" is each reason's
/// cycle delta over the total charged-cycle delta (signed: a reason the
/// improved kernel spends *more* on shows a negative share).
inline Table stall_waterfall(const gpusim::StallBreakdown& orig,
                             const gpusim::StallBreakdown& improved) {
  std::vector<std::pair<const char*, std::uint64_t>> o, n;
  gpusim::for_each_stall_reason(
      orig, [&](const char* r, std::uint64_t v) { o.emplace_back(r, v); });
  gpusim::for_each_stall_reason(
      improved, [&](const char* r, std::uint64_t v) { n.emplace_back(r, v); });
  const double gap = gpusim::stall_ticks_to_cycles(orig.charged) -
                     gpusim::stall_ticks_to_cycles(improved.charged);
  Table t({"reason", "orig cycles", "improved cycles", "delta cycles",
           "gap share %"},
          1);
  for (std::size_t i = 0; i < o.size(); ++i) {
    const double oc = gpusim::stall_ticks_to_cycles(o[i].second);
    const double ic = gpusim::stall_ticks_to_cycles(n[i].second);
    t.add_row({std::string(o[i].first), oc, ic, oc - ic,
               gap != 0.0 ? 100.0 * (oc - ic) / gap : 0.0});
  }
  t.add_row({std::string("(charged)"),
             gpusim::stall_ticks_to_cycles(orig.charged),
             gpusim::stall_ticks_to_cycles(improved.charged), gap,
             gap != 0.0 ? 100.0 : 0.0});
  return t;
}

/// Query lengths from the original CUDASW++ study ("ranges from 144 to
/// 5478 residues"), thinned to keep bench wall-clock sane.
inline std::vector<std::size_t> paper_query_lengths() {
  return {144, 567, 1500, 3005, 5478};
}

}  // namespace cusw::bench
