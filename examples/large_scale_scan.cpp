// Large-scale scanning — the §VI deployment story in one program:
//   * a database too large for device memory, scanned in chunks with
//     host-to-device copies overlapped against kernels;
//   * the same scan sharded across multiple GPUs;
//   * binary database images so the preprocessing is paid once.
//
// Usage: ./large_scale_scan [--n=3000] [--query=567] [--gpus=2]
//                           [--mem-mb=8]
#include <cstdio>

#include "cudasw/chunked.h"
#include "cudasw/multi_gpu.h"
#include "seq/generate.h"
#include "seq/serialize.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cusw;
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 3000));
  const auto qlen = static_cast<std::size_t>(cli.get_int("query", 567));
  const int gpus = static_cast<int>(cli.get_int("gpus", 2));
  const auto mem_mb = static_cast<std::uint64_t>(cli.get_int("mem-mb", 8));

  Rng rng(11);
  const auto query = seq::random_protein(qlen, rng).residues;
  const auto& matrix = sw::ScoringMatrix::blosum62();

  // 1. Preprocess once: synthesize (stand-in for FASTA conversion), sort,
  // and store the binary image.
  const std::string image = "/tmp/cusw_large_db.bin";
  {
    auto db = seq::DatabaseProfile::swissprot().synthesize(n, 12);
    db.sort_by_length();
    seq::write_db_file(image, db);
    std::printf("wrote %zu sequences (%llu residues) to %s\n", db.size(),
                static_cast<unsigned long long>(db.total_residues()),
                image.c_str());
  }
  WallTimer load_timer;
  const seq::SequenceDB db = seq::read_db_file(image);
  std::printf("loaded image in %.1f ms\n\n", load_timer.seconds() * 1e3);

  const auto spec = gpusim::DeviceSpec::tesla_c1060().scaled(0.1);

  // 2. Chunked scan under an artificially small device-memory budget.
  {
    gpusim::Device dev(spec);
    cudasw::ChunkedConfig cfg;
    cfg.device_memory_bytes = mem_mb << 20;
    cfg.overlap_transfers = false;
    const auto blocking = cudasw::chunked_search(dev, query, db, matrix, cfg);
    cfg.overlap_transfers = true;
    const auto streamed = cudasw::chunked_search(dev, query, db, matrix, cfg);
    std::printf("chunked scan under a %llu MiB budget: %zu chunks\n",
                static_cast<unsigned long long>(mem_mb), streamed.chunks);
    std::printf("  copy-then-compute: %.3f sim-s (%.2f GCUPs)\n",
                blocking.total_seconds,
                blocking.gcups(query.size() * db.total_residues()));
    std::printf("  streamed copies:   %.3f sim-s (%.2f GCUPs, %.1f%% of the"
                " copy hidden)\n\n",
                streamed.total_seconds,
                streamed.gcups(query.size() * db.total_residues()),
                100.0 * (blocking.total_seconds - streamed.total_seconds) /
                    streamed.transfer_seconds);
  }

  // 3. Multi-GPU sharding.
  {
    const auto one = cudasw::multi_gpu_search(spec, 1, query, db, matrix,
                                              cudasw::SearchConfig{});
    const auto many = cudasw::multi_gpu_search(spec, gpus, query, db, matrix,
                                               cudasw::SearchConfig{});
    std::printf("multi-GPU: 1 GPU %.3f sim-s; %d GPUs %.3f sim-s "
                "(speedup %.2fx, \"almost linear\")\n",
                one.seconds, gpus, many.seconds, one.seconds / many.seconds);
  }
  return 0;
}
