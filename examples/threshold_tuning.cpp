// Threshold tuning — the paper's §VI observation that the default 3072
// dispatch threshold is not optimal once the intra-task kernel is fast,
// turned into a working tool: calibrate the autotuner on a simulated
// device, predict the best threshold for a database from its length
// distribution alone, and verify against full simulation.
//
// Usage: ./threshold_tuning [--db=<name>] [--n=1200] [--query=567]
//   where <name> is one of: swissprot, dog, rat, human, mouse, tair
#include <cstdio>

#include "cudasw/autotune.h"
#include "cudasw/pipeline.h"
#include "seq/generate.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cusw;
  const Cli cli(argc, argv);

  const std::string name = cli.get("db", "tair");
  seq::DatabaseProfile prof = seq::DatabaseProfile::tair();
  if (name == "swissprot") prof = seq::DatabaseProfile::swissprot();
  if (name == "dog") prof = seq::DatabaseProfile::ensembl_dog();
  if (name == "rat") prof = seq::DatabaseProfile::ensembl_rat();
  if (name == "human") prof = seq::DatabaseProfile::refseq_human();
  if (name == "mouse") prof = seq::DatabaseProfile::refseq_mouse();

  const auto n = static_cast<std::size_t>(cli.get_int("n", 1200));
  const auto qlen = static_cast<std::size_t>(cli.get_int("query", 567));
  const auto db = prof.synthesize(n, 42);
  Rng rng(7);
  const auto query = seq::random_protein(qlen, rng).residues;
  const auto& matrix = sw::ScoringMatrix::blosum62();

  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050().scaled(0.1));
  cudasw::SearchConfig cfg;  // improved kernel

  std::printf("database: %s stand-in (%zu sequences), query %zu, device %s\n",
              prof.name.c_str(), db.size(), qlen, dev.spec().name.c_str());

  // Calibrate once per device, then predict per database — the paper's
  // "during the database preprocessing step, we can find the transition
  // point".
  const cudasw::ThresholdAutotuner tuner(dev, matrix, cfg, 256);
  const std::vector<std::size_t> candidates = {500,  800,  1200, 1500,
                                               2000, 3072, 6000};

  Table t({"threshold", "predicted s", "simulated s", "GCUPs"}, 4);
  std::size_t best_sim_thr = 0;
  double best_sim = 1e300;
  std::vector<std::size_t> lengths;
  for (const auto& s : db.sequences()) lengths.push_back(s.length());
  std::sort(lengths.begin(), lengths.end());
  for (std::size_t thr : candidates) {
    cfg.threshold = thr;
    const double predicted = tuner.predict_seconds(lengths, qlen, thr);
    const auto report = cudasw::search(dev, query, db, matrix, cfg);
    if (report.seconds() < best_sim) {
      best_sim = report.seconds();
      best_sim_thr = thr;
    }
    t.add_row({static_cast<std::int64_t>(thr), predicted, report.seconds(),
               report.gcups()});
  }
  t.print();

  const auto pick = tuner.tune(db, qlen, candidates);
  std::printf("\nautotuner picks threshold %zu; full simulation prefers %zu\n",
              pick.threshold, best_sim_thr);
  std::printf("(the paper's example: dropping TAIR's threshold from 3072 to"
              " 1500 gained ~4 GCUPs)\n");
  return 0;
}
