// Fault injection and graceful degradation (DESIGN.md §8).
//
// Runs the same multi-GPU scan four ways — clean, with transient transfer
// faults, with a device loss mid-scan, and with the whole fleet failing —
// and shows the driver walking the degradation ladder (retry with backoff,
// reshard onto survivors, fall back to the CPU striped engine) while the
// scores stay bit-identical to the clean run.
//
// The same schedules can be applied to any run without code changes via
// the environment:
//   CUSW_FAULTS="seed=7,transfer=0.2,lose=1@3" ./build/examples/quickstart
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/fault_tolerance
#include <cstdio>

#include "cudasw/multi_gpu.h"
#include "seq/generate.h"

int main() {
  using namespace cusw;

  const auto& matrix = sw::ScoringMatrix::blosum62();
  Rng rng(7);
  const auto query = seq::random_protein(144, rng).residues;
  const auto db = seq::DatabaseProfile::swissprot().synthesize(300, 11);
  const auto spec = gpusim::DeviceSpec::tesla_c1060().scaled(0.25);
  const int gpus = 3;

  const auto clean = cudasw::multi_gpu_search(spec, gpus, query, db, matrix,
                                              cudasw::SearchConfig{});
  std::printf("clean run:        %d GPUs, %.4f sim-s, %.2f GCUPs\n", gpus,
              clean.seconds, clean.gcups());

  const auto run = [&](const char* label, const char* plan) {
    cudasw::MultiGpuConfig cfg;
    cfg.faults = gpusim::FaultPlan::parse(plan);
    cfg.backoff.max_retries = 8;
    const auto r = cudasw::multi_gpu_search(spec, gpus, query, db, matrix, cfg);
    std::printf(
        "%-17s %.4f sim-s (+%.1f%%), faults %llu/%llu "
        "(transfer/launch), retries %llu, failovers %llu, lost %llu%s\n",
        label, r.seconds, 100.0 * (r.seconds / clean.seconds - 1.0),
        static_cast<unsigned long long>(r.faults.transfer_faults),
        static_cast<unsigned long long>(r.faults.launch_faults),
        static_cast<unsigned long long>(r.faults.retries),
        static_cast<unsigned long long>(r.faults.failovers),
        static_cast<unsigned long long>(r.faults.devices_lost),
        r.faults.degraded_to_cpu ? ", DEGRADED TO CPU" : "");
    std::printf("                  scores %s the clean run\n",
                r.scores == clean.scores ? "bit-identical to"
                                         : "DIFFER from (bug!)");
    return r;
  };

  // Transient faults: retried under capped exponential backoff; the run
  // only gets slower.
  run("flaky transfers:", "seed=42,transfer=0.3");

  // One device dies on its first launch: its shard is resharded over the
  // survivors.
  run("device loss:", "seed=42,lose=1@0");

  // Everything fails: retries exhaust on every device and the scan
  // degrades to the swps3 striped CPU engine — still exact.
  run("fleet gone:", "seed=42,launch=1.0");

  std::printf(
      "\nevery fault, retry and failover is also published to the obs layer:\n"
      "fault.* counters in the metrics registry, instant markers on the\n"
      "Chrome trace (CUSW_TRACE=<path>).\n");
  return 0;
}
