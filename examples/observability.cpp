// Observability tour: metrics registry, profiler observer, Chrome trace.
//
// Runs one database scan three ways of looking at it:
//   1. metrics — snapshot/diff of the process-wide registry, printed as a
//      table and as JSON (what CUSW_METRICS=<path> writes at exit);
//   2. cusw-prof — the nvprof-style per-kernel summary (CUSW_PROF=1);
//   3. trace — a Chrome trace-event file with the simulated device
//      timeline and the wall-clock host timeline (CUSW_TRACE=<path>).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/observability
#include <cstdio>

#include "cudasw/pipeline.h"
#include "gpusim/observer.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "seq/generate.h"

namespace {

// A custom profiler hook: count barrier windows as they happen. Callbacks
// fire on worker threads, so state must be atomic or otherwise
// thread-safe.
class BarrierCounter final : public cusw::gpusim::LaunchObserver {
 public:
  void on_window(const cusw::gpusim::WindowEvent& e) override {
    if (e.barrier) barriers_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t barriers() const {
    return barriers_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> barriers_{0};
};

}  // namespace

int main() {
  using namespace cusw;

  // Record a trace of everything this process simulates from here on.
  const char* trace_path = "observability_trace.json";
  obs::configure_trace(trace_path);

  const auto db = seq::DatabaseProfile::swissprot().synthesize(400, 1);
  const auto& matrix = sw::ScoringMatrix::blosum62();
  Rng rng(7);
  const auto query = seq::random_protein(367, rng).residues;

  gpusim::Device gpu(gpusim::DeviceSpec::tesla_c1060());
  BarrierCounter hook;
  gpu.set_observer(&hook);

  // --- 1. metrics: diff the registry around the work -----------------------
  const obs::Snapshot before = obs::Registry::global().snapshot();
  cudasw::SearchConfig cfg;
  const cudasw::SearchReport report =
      cudasw::search(gpu, query, db, matrix, cfg);
  const obs::Snapshot delta = obs::Registry::global().snapshot().diff(before);

  std::printf("scan: %.1f GCUPs; observer saw %llu barrier windows\n\n",
              report.gcups(),
              static_cast<unsigned long long>(hook.barriers()));
  std::printf("--- registry delta for this search ---\n%s\n",
              delta.to_table().c_str());

  // --- 2. cusw-prof: the per-kernel profiler table -------------------------
  std::printf("--- cusw-prof ---\n%s\n",
              obs::format_kernel_profile(delta).c_str());

  // --- 3. trace: write, then validate the schema CI checks -----------------
  const std::string written = obs::flush_trace();
  if (!written.empty()) {
    std::printf("trace written to %s (load in chrome://tracing)\n",
                written.c_str());
    // Validate what we just wrote, exactly as tests/CI do.
    std::FILE* f = std::fopen(written.c_str(), "rb");
    std::string text;
    if (f != nullptr) {
      char buf[4096];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
      std::fclose(f);
    }
    const obs::TraceCheck check = obs::validate_chrome_trace(text);
    std::printf("trace check: %s (%zu spans on %zu tracks)\n",
                check.ok ? "ok" : check.error.c_str(), check.spans,
                check.tracks);
  }
  return 0;
}
