// Kernel anatomy — a guided tour of why the improved intra-task kernel
// wins, using the simulator's profiler counters on a single long pair.
// This walks the reader through the paper's argument chain: transaction
// counts (Table I), the incremental fixes (§III-A/B), and the Fermi cache
// interaction (Fig. 6).
#include <cstdio>

#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "seq/generate.h"
#include "sw/smith_waterman.h"
#include "util/table.h"

namespace {

void profile(const char* label, const cusw::cudasw::KernelRun& run) {
  const auto& s = run.stats;
  const double cells = static_cast<double>(run.cells);
  std::printf(
      "%-34s %9.2f GCUPs | global txns %9llu (%.3f/cell) | local %7llu | "
      "tex fetches %9llu | shared %9llu | syncs %7llu\n",
      label, cells / s.seconds * 1e-9,
      static_cast<unsigned long long>(s.global_memory_transactions()),
      static_cast<double>(s.global_memory_transactions()) / cells,
      static_cast<unsigned long long>(s.local.transactions),
      static_cast<unsigned long long>(s.texture.requests),
      static_cast<unsigned long long>(s.shared_accesses),
      static_cast<unsigned long long>(s.syncs));
}

}  // namespace

int main() {
  using namespace cusw;
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};
  Rng rng(99);
  const auto query = seq::random_protein(1024, rng).residues;
  seq::SequenceDB pair;
  pair.add(seq::random_protein(4096, rng, "long_target"));

  std::printf("one pair: query 1024 x target 4096 = %.1f Mcells\n\n",
              1024.0 * 4096.0 / 1e6);

  // Sanity: every kernel must agree with the scalar reference.
  const int want = sw::sw_score(query, pair[0].residues, matrix, gap);
  std::printf("reference Smith-Waterman score: %d\n\n", want);

  for (const bool fermi : {false, true}) {
    gpusim::Device dev(fermi ? gpusim::DeviceSpec::tesla_c2050()
                             : gpusim::DeviceSpec::tesla_c1060());
    std::printf("== %s ==\n", dev.spec().name.c_str());

    const auto orig =
        cudasw::run_intra_task_original(dev, query, pair, matrix, gap, {});
    profile("original (wavefront, global mem)", orig);

    cudasw::ImprovedIntraParams broken;
    broken.deep_swap = false;
    broken.unroll_profile_loop = false;
    broken.packed_profile = false;
    profile("improved v0 (register spills)",
            cudasw::run_intra_task_improved(dev, query, pair, matrix, gap,
                                            broken));

    cudasw::ImprovedIntraParams plain;
    plain.packed_profile = false;
    profile("improved, plain profile",
            cudasw::run_intra_task_improved(dev, query, pair, matrix, gap,
                                            plain));

    const auto imp =
        cudasw::run_intra_task_improved(dev, query, pair, matrix, gap, {});
    profile("improved, packed profile (final)", imp);

    if (orig.scores[0] != want || imp.scores[0] != want) {
      std::fprintf(stderr, "score mismatch!\n");
      return 1;
    }
    std::printf("all kernels returned the reference score %d\n\n", want);
  }

  std::printf(
      "what to notice: the original kernel performs ~two orders of\n"
      "magnitude more global transactions per cell; the v0 spills add\n"
      "local-memory traffic (the nvcc pitfalls of §III-A); packing the\n"
      "profile divides texture fetches by four (§III-B); and the original\n"
      "kernel narrows the gap on the C2050 because its traffic starts\n"
      "hitting in L1/L2 (Fig. 5/6).\n");
  return 0;
}
