// GPU pipeline vs the SWPS3-style CPU baseline on the same workload — the
// comparison behind Fig. 7, as a runnable example. The CPU side is real
// wall-clock on this host; the GPU side is simulated device time.
#include <cstdio>

#include "cudasw/pipeline.h"
#include "seq/generate.h"
#include "swps3/search.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace cusw;
  const Cli cli(argc, argv);
  const auto qlen = static_cast<std::size_t>(cli.get_int("query", 567));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 600));

  Rng rng(5);
  const auto query = seq::random_protein(qlen, rng).residues;
  const auto db = seq::DatabaseProfile::swissprot().synthesize(n, 6);
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};

  std::printf("query %zu residues vs %zu sequences (%llu residues)\n\n", qlen,
              db.size(),
              static_cast<unsigned long long>(db.total_residues()));

  // CPU: striped Smith-Waterman with the lazy-F loop, multithreaded.
  ThreadPool pool(4);
  const auto cpu = swps3::search(query, db, matrix, gap, pool);
  std::printf("SWPS3-style CPU (4 threads): %.3f s wall, %.2f GCUPs, "
              "%.2f lazy-F steps/column\n",
              cpu.seconds, cpu.gcups(),
              static_cast<double>(cpu.lazy_f_iterations) /
                  static_cast<double>(db.total_residues()));

  // GPU: CUDASW++ pipeline with both intra-task kernels.
  for (const bool improved : {false, true}) {
    gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060());
    cudasw::SearchConfig cfg;
    cfg.intra_kernel = improved ? cudasw::IntraKernel::kImproved
                                : cudasw::IntraKernel::kOriginal;
    const auto gpu = cudasw::search(dev, query, db, matrix, cfg);
    std::printf("CUDASW++ (%s intra) on C1060: %.3f simulated s, %.2f GCUPs\n",
                improved ? "improved" : "original", gpu.seconds(),
                gpu.gcups());
    if (gpu.scores != cpu.scores) {
      std::fprintf(stderr, "GPU and CPU scores disagree!\n");
      return 1;
    }
  }
  std::printf("\nall three engines produced identical optimal scores.\n");
  return 0;
}
