// Quickstart: align two protein sequences and scan a small database.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cudasw/pipeline.h"
#include "seq/generate.h"
#include "sw/smith_waterman.h"

int main() {
  using namespace cusw;

  // --- 1. Score and align a pair of sequences (host reference API) -------
  const seq::Sequence query("my_query", "MKVLAADWYHQKLMRRWYYQQV");
  const seq::Sequence target("hit_42", "GGMKVLADWYHQKLMQQVPPPA");
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};

  const sw::LocalAlignment aln = sw::sw_align(query, target, matrix, gap);
  std::printf("pairwise score: %d (matches %zu, mismatches %zu, gaps %zu)\n",
              aln.score, aln.matches, aln.mismatches, aln.gaps);
  std::printf("  query  [%zu..%zu)  %s\n", aln.query_begin, aln.query_end,
              aln.query_aligned.c_str());
  std::printf("  target [%zu..%zu)  %s\n\n", aln.target_begin, aln.target_end,
              aln.target_aligned.c_str());

  // --- 2. Scan a database with the CUDASW++ pipeline on a simulated GPU --
  const auto db = seq::DatabaseProfile::swissprot().synthesize(500, /*seed=*/1);
  gpusim::Device gpu(gpusim::DeviceSpec::tesla_c1060());

  cudasw::SearchConfig cfg;  // improved intra-task kernel, threshold 3072
  const cudasw::SearchReport report =
      cudasw::search(gpu, query.residues, db, matrix, cfg);

  // Top-5 database hits.
  std::vector<std::size_t> order(db.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return report.scores[a] > report.scores[b];
                    });
  std::printf("top database hits (of %zu sequences):\n", db.size());
  for (std::size_t k = 0; k < 5; ++k) {
    std::printf("  %-16s score %d\n", db[order[k]].name.c_str(),
                report.scores[order[k]]);
  }
  std::printf(
      "\nscan: %.2f simulated ms, %.1f GCUPs; %zu sequences via inter-task,"
      " %zu via intra-task\n",
      report.seconds() * 1e3, report.gcups(), report.inter_sequences,
      report.intra_sequences);
  return 0;
}
