// Database search from FASTA files — the workflow the paper's intro
// motivates: compare a query sequence to a large database of known
// sequences, optimally, faster than CPU implementations.
//
// Usage:
//   ./database_search [--query=q.fasta] [--db=db.fasta] [--gpu=c1060|c2050]
//                     [--kernel=improved|original] [--threshold=3072]
//                     [--top=10]
//
// Without arguments it writes itself a demonstration query/database pair
// (a scaled Swiss-Prot stand-in) under /tmp and searches that, so the
// example is runnable out of the box.
#include <cstdio>
#include <numeric>

#include "cudasw/pipeline.h"
#include "seq/fasta.h"
#include "seq/generate.h"
#include "sw/linear_align.h"
#include "sw/statistics.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cusw;
  const Cli cli(argc, argv);

  std::string query_path = cli.get("query", "");
  std::string db_path = cli.get("db", "");
  if (query_path.empty() || db_path.empty()) {
    std::printf("no --query/--db given; writing a demo pair under /tmp\n");
    Rng rng(2024);
    seq::SequenceDB qdb;
    qdb.add(seq::random_protein(567, rng, "demo_query_567"));
    seq::write_fasta_file("/tmp/cusw_demo_query.fasta", qdb);
    seq::write_fasta_file(
        "/tmp/cusw_demo_db.fasta",
        seq::DatabaseProfile::swissprot().synthesize(800, 2025));
    query_path = "/tmp/cusw_demo_query.fasta";
    db_path = "/tmp/cusw_demo_db.fasta";
  }

  const seq::SequenceDB queries = seq::read_fasta_file(query_path);
  const seq::SequenceDB db = seq::read_fasta_file(db_path);
  if (queries.empty() || db.empty()) {
    std::fprintf(stderr, "empty query or database\n");
    return 1;
  }
  const auto st = db.length_stats();
  std::printf("database: %zu sequences, %llu residues, mean length %.0f, "
              "%.2f%% over 3072\n",
              st.count, static_cast<unsigned long long>(st.total_residues),
              st.mean_length, 100.0 * st.fraction_over(3072));

  const auto spec = cli.get("gpu", "c1060") == "c2050"
                        ? gpusim::DeviceSpec::tesla_c2050()
                        : gpusim::DeviceSpec::tesla_c1060();
  gpusim::Device gpu(spec);

  cudasw::SearchConfig cfg;
  cfg.threshold = static_cast<std::size_t>(cli.get_int("threshold", 3072));
  cfg.intra_kernel = cli.get("kernel", "improved") == "original"
                         ? cudasw::IntraKernel::kOriginal
                         : cudasw::IntraKernel::kImproved;

  // Shared preprocessing for all queries; significance from the standard
  // gapped BLOSUM62 Karlin-Altschul parameters.
  const cudasw::PreparedDatabase prepared(db, cfg.threshold);
  const auto stats = sw::KarlinAltschulParams::blosum62_gapped();
  const auto top_n = static_cast<std::size_t>(cli.get_int("top", 10));
  const double max_evalue = cli.get_double("evalue", 10.0);

  for (const auto& q : queries.sequences()) {
    const auto report = cudasw::search(gpu, q.residues, prepared,
                                       sw::ScoringMatrix::blosum62(), cfg);
    std::printf("\nquery %s (%zu residues) on %s: %.1f GCUPs, %.2f sim-ms, "
                "intra share %.1f%%\n",
                q.name.c_str(), q.length(), spec.name.c_str(), report.gcups(),
                report.seconds() * 1e3, 100.0 * report.intra_time_fraction());

    const auto hits = sw::rank_hits(report.scores, stats, q.length(),
                                    st.total_residues, max_evalue, top_n);
    if (hits.empty()) {
      std::printf("no hits with E-value <= %g\n", max_evalue);
      continue;
    }
    Table t({"rank", "sequence", "length", "score", "bits", "E-value"}, 3);
    for (std::size_t r = 0; r < hits.size(); ++r) {
      const auto& h = hits[r];
      t.add_row({static_cast<std::int64_t>(r + 1), db[h.db_index].name,
                 static_cast<std::int64_t>(db[h.db_index].length()),
                 static_cast<std::int64_t>(h.score), h.bit_score, h.evalue});
    }
    t.print();

    // --align: recover the best hit's alignment (linear-space traceback;
    // the scan itself is score-only, as in CUDASW++).
    if (cli.get_bool("align", false)) {
      const auto& best = db[hits.front().db_index];
      const auto aln = sw::sw_align_linear(q, best,
                                           sw::ScoringMatrix::blosum62(),
                                           cfg.gap);
      std::printf("best hit alignment (score %d, %zu matches, %zu gaps):\n",
                  aln.score, aln.matches, aln.gaps);
      for (std::size_t off = 0; off < aln.query_aligned.size(); off += 60) {
        std::printf("  q %6zu %s\n  t %6zu %s\n", aln.query_begin + off,
                    aln.query_aligned.substr(off, 60).c_str(),
                    aln.target_begin + off,
                    aln.target_aligned.substr(off, 60).c_str());
      }
    }
  }
  return 0;
}
